module Graph = Ln_graph.Graph
module Engine = Ln_congest.Engine
module Ledger = Ln_congest.Ledger
module Telemetry = Ln_congest.Telemetry
module Broadcast = Ln_prim.Broadcast
module Forest = Ln_prim.Forest
module Fragments = Ln_mst.Fragments
module Dist_mst = Ln_mst.Dist_mst

type t = {
  rt : int;
  rooted : Dist_mst.rooted;
  appearances : (int * float) list array;
  interval : (float * float) array;
  g_value : float array;
  total : float;
}

(* One full tour computation for an arbitrary edge-length function
   [len] (actual weights for visiting times, constant 1 for indices).
   Returns per-vertex global entry time and subtree tour length g. *)
let pass (dist : Dist_mst.t) (rooted : Dist_mst.rooted) ~rt ~len ledger ~label =
  let g = dist.Dist_mst.graph in
  let base = dist.Dist_mst.base in
  let n = Graph.n g in
  let count = base.Fragments.count in
  let frag_of = base.Fragments.frag_of in
  (* Fragment-internal parent pointers: the MST parent edge when it
     stays inside the fragment (locally decidable). *)
  let internal_parent =
    Array.init n (fun v ->
        let pe = rooted.Dist_mst.parent_edge.(v) in
        if pe < 0 then -1
        else begin
          let p = Graph.other_end g pe v in
          if frag_of.(p) = frag_of.(v) then pe else -1
        end)
  in
  (* External children: fragment roots hanging off this vertex in T. *)
  let ext_children = Array.make n [] in
  for f = 0 to count - 1 do
    let e = rooted.Dist_mst.frag_parent_edge.(f) in
    if e >= 0 then begin
      let z = rooted.Dist_mst.frag_root.(f) in
      let p = Graph.other_end g e z in
      ext_children.(p) <- (z, e) :: ext_children.(p)
    end
  done;
  (* Step A: local tour lengths ℓ(v) (fragment-local up-pass). *)
  let sum_children kids extra =
    List.fold_left (fun acc (_, (x, e)) -> acc +. x +. (2.0 *. len e)) extra kids
  in
  (* Pass values tagged with the edge they travelled over so the parent
     knows the connecting weight: child sends (value, its parent edge). *)
  let ell =
    Telemetry.span ~ledger (label ^ "/local-lengths") (fun () ->
        let ell, _, _ =
          Forest.up g ~parent_edge:internal_parent
            ~tree_edges:base.Fragments.tree_edges
            ~compute:(fun v kids ->
              let total = sum_children kids 0.0 in
              (total, internal_parent.(v)))
        in
        ell)
  in
  let ell = Array.map fst ell in
  (* Step B: broadcast the fragment roots' ℓ values (Lemma 1). *)
  let items =
    Array.make n []
  in
  for f = 0 to count - 1 do
    let r = rooted.Dist_mst.frag_root.(f) in
    items.(r) <- (f, ell.(r)) :: items.(r)
  done;
  let all =
    Telemetry.span ~ledger (label ^ "/ell-broadcast") (fun () ->
        fst (Broadcast.all_to_all ~words:(fun _ -> 2) g ~tree:dist.Dist_mst.bfs ~items))
  in
  let ell_root = Array.make count 0.0 in
  List.iter (fun (f, l) -> ell_root.(f) <- l) all.(rt);
  (* Step C: global lengths of fragment roots, locally from T'. *)
  let frag_children = Array.make count [] in
  for f = 0 to count - 1 do
    let p = rooted.Dist_mst.frag_parent.(f) in
    if p >= 0 then frag_children.(p) <- f :: frag_children.(p)
  done;
  let g_root = Array.make count nan in
  let rec compute_g_root f =
    if Float.is_nan g_root.(f) then begin
      let acc = ref ell_root.(f) in
      List.iter
        (fun f' ->
          compute_g_root f';
          acc := !acc +. g_root.(f') +. (2.0 *. len rooted.Dist_mst.frag_parent_edge.(f')))
        frag_children.(f);
      g_root.(f) <- !acc
    end
  in
  for f = 0 to count - 1 do
    compute_g_root f
  done;
  (* Step D: global lengths g(v) (second fragment-local up-pass);
     external children contribute their globally-known g. *)
  let ext_contribution v =
    List.fold_left
      (fun acc (z, e) -> acc +. g_root.(frag_of.(z)) +. (2.0 *. len e))
      0.0 ext_children.(v)
  in
  let g_pairs, g_kids =
    Telemetry.span ~ledger (label ^ "/global-lengths") (fun () ->
        let g_pairs, g_kids, _ =
          Forest.up g ~parent_edge:internal_parent
            ~tree_edges:base.Fragments.tree_edges
            ~compute:(fun v kids ->
              (sum_children kids (ext_contribution v), internal_parent.(v)))
        in
        (g_pairs, g_kids))
  in
  let g_value = Array.map fst g_pairs in
  (* Every vertex's ordered T-children with (child, edge, g(child)). *)
  let ordered_children =
    Array.init n (fun v ->
        let internal = List.map (fun (c, (gc, e)) -> (c, e, gc)) g_kids.(v) in
        let external_ =
          List.map (fun (z, e) -> (z, e, g_root.(frag_of.(z)))) ext_children.(v)
        in
        List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) (internal @ external_))
  in
  (* Offset of a child relative to its parent's entry time. *)
  let child_offset v child =
    let rec scan acc = function
      | [] -> invalid_arg "Euler_dist: unknown child"
      | (z, e, gz) :: rest ->
        if z = child then acc +. len e else scan (acc +. gz +. (2.0 *. len e)) rest
    in
    scan 0.0 ordered_children.(v)
  in
  (* Step E: local DFS entry offsets within each fragment. *)
  let local_start =
    Telemetry.span ~ledger (label ^ "/intervals-down") (fun () ->
        fst
          (Forest.down g ~parent_edge:internal_parent
             ~tree_edges:base.Fragments.tree_edges
             ~seed:(fun v -> if internal_parent.(v) = -1 then Some 0.0 else None)
             ~emit:(fun v a child -> a +. child_offset v child)))
  in
  let local_start = Array.map (function Some a -> a | None -> 0.0) local_start in
  (* One native round across external edges: each parent endpoint tells
     the child fragment's root its offset within the parent fragment. *)
  let ext_offset_program : (float option, float) Engine.program =
    let open Engine in
    {
      name = "euler-ext-offsets";
      words = (fun _ -> 2);
      init =
        (fun ctx ->
          let outs =
            List.map
              (fun (z, e) ->
                { via = e; msg = local_start.(ctx.me) +. child_offset ctx.me z })
              ext_children.(ctx.me)
          in
          (None, outs));
      step =
        (fun _ctx ~round:_ s inbox ->
          match inbox with
          | { payload; _ } :: _ -> (Some payload, [], false)
          | [] -> (s, [], false));
    }
  in
  let ext_offsets =
    Telemetry.span ~ledger (label ^ "/ext-offsets") (fun () ->
        fst (Engine.run g ext_offset_program))
  in
  (* Step F: gather per-fragment offsets at rt, prefix-combine along
     T', broadcast the shifts. *)
  let gather_items = Array.make n [] in
  for f = 0 to count - 1 do
    let r = rooted.Dist_mst.frag_root.(f) in
    if f <> frag_of.(rt) then begin
      let b = match ext_offsets.(r) with Some b -> b | None -> 0.0 in
      gather_items.(r) <- (f, b) :: gather_items.(r)
    end
  done;
  let gathered =
    Telemetry.span ~ledger (label ^ "/offsets-gather") (fun () ->
        fst
          (Broadcast.gather ~words:(fun _ -> 2) g ~tree:dist.Dist_mst.bfs
             ~items:gather_items))
  in
  (* The shift combination is performed at the BFS-tree root (the hub
     all global communication is pipelined through). *)
  let hub = Ln_graph.Tree.root dist.Dist_mst.bfs in
  let b_of = Array.make count 0.0 in
  List.iter (fun (f, b) -> b_of.(f) <- b) gathered.(hub);
  let shift = Array.make count nan in
  let top = frag_of.(rt) in
  shift.(top) <- 0.0;
  let rec compute_shift f =
    if Float.is_nan shift.(f) then begin
      let p = rooted.Dist_mst.frag_parent.(f) in
      compute_shift p;
      shift.(f) <- shift.(p) +. b_of.(f)
    end
  in
  for f = 0 to count - 1 do
    compute_shift f
  done;
  let shifts_list = Array.to_list (Array.mapi (fun f s -> (f, s)) shift) in
  Telemetry.span ~ledger (label ^ "/shifts-broadcast") (fun () ->
      ignore
        (Broadcast.downcast ~words:(fun _ -> 2) g ~tree:dist.Dist_mst.bfs
           ~items:shifts_list));
  (* Global entry times. *)
  let entry = Array.init n (fun v -> shift.(frag_of.(v)) +. local_start.(v)) in
  (entry, g_value, ordered_children)

let run dist ~rt =
  Telemetry.span "euler-tour" @@ fun () ->
  let g = dist.Dist_mst.graph in
  let n = Graph.n g in
  let ledger = dist.Dist_mst.ledger in
  let engine_before = Engine.snapshot_totals () in
  let rooted = Dist_mst.root_at dist ~rt in
  let time_entry, g_value, ordered_w =
    pass dist rooted ~rt ~len:(Graph.weight g) ledger ~label:"euler-w"
  in
  let idx_entry, _, ordered_u =
    pass dist rooted ~rt ~len:(fun _ -> 1.0) ledger ~label:"euler-i"
  in
  let appearances =
    Array.init n (fun v ->
        (* First appearance at entry; one more after each child. *)
        let rec walk tw ti acc kids_w kids_u =
          match kids_w, kids_u with
          | [], [] -> List.rev acc
          | (_, ew, gw) :: rw, (_, _, gu) :: ru ->
            let tw = tw +. gw +. (2.0 *. Graph.weight g ew) in
            let ti = ti +. gu +. 2.0 in
            walk tw ti ((int_of_float (Float.round ti), tw) :: acc) rw ru
          | _ -> assert false
        in
        let t0 = time_entry.(v) and i0 = idx_entry.(v) in
        walk t0 i0
          [ (int_of_float (Float.round i0), t0) ]
          ordered_w.(v) ordered_u.(v))
  in
  let interval =
    Array.init n (fun v ->
        let first = time_entry.(v) in
        (first, first +. g_value.(v)))
  in
  Ledger.attach_perf ledger (Engine.totals_since engine_before);
  {
    rt;
    rooted;
    appearances;
    interval;
    g_value;
    total = g_value.(rt);
  }
