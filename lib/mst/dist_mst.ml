module Graph = Ln_graph.Graph
module Tree = Ln_graph.Tree
module Union_find = Ln_graph.Union_find
module Engine = Ln_congest.Engine
module Ledger = Ln_congest.Ledger
module Telemetry = Ln_congest.Telemetry
module Bfs = Ln_prim.Bfs
module Exchange = Ln_prim.Exchange
module Keyed = Ln_prim.Keyed
module Forest = Ln_prim.Forest

type t = {
  graph : Graph.t;
  bfs : Tree.t;
  mst_edges : int list;
  base : Fragments.t;
  external_edges : int list;
  ledger : Ledger.t;
}

(* Candidate outgoing edge: (weight, edge id, target fragment). Ordered
   by (weight, id) — the library-wide MST tie-break. *)
let better (w1, e1, _) (w2, e2, _) = w1 < w2 || (w1 = w2 && e1 < e2)

let run ?(root = 0) ?diam_cap g =
  if not (Graph.is_connected g) then invalid_arg "Dist_mst.run: disconnected";
  Telemetry.span "dist-mst" @@ fun () ->
  let n = Graph.n g in
  let ledger = Ledger.create () in
  (* Attribute all engine work below (BFS, exchanges, aggregations) to
     this ledger so experiments can report simulator throughput. *)
  let engine_before = Engine.snapshot_totals () in
  let bfs = Telemetry.span ~ledger "bfs-tree" (fun () -> fst (Bfs.tree g ~root)) in
  let sqrt_n = int_of_float (Float.ceil (Float.sqrt (float_of_int n))) in
  let diam_cap = match diam_cap with Some c -> c | None -> (2 * sqrt_n) + 2 in
  let base, phases = Boruvka.base_fragments g ~target:sqrt_n ~diam_cap in
  (* Each phase-1 Borůvka phase costs O(live fragment diameter) rounds
     in the GHS-with-counters execution this stands in for: an MWOE
     convergecast, a merge coordination and an id flood, all fragment-
     local. Charged from the measured diameters. *)
  List.iter
    (fun (p : Boruvka.phase) ->
      Ledger.charged ledger ~label:"kp98-phase1" ((3 * p.max_live_diameter) + 8))
    phases;
  (* Phase 2: global Borůvka over the base fragments. *)
  let cur = Array.copy base.Fragments.frag_of in
  let nkeys = base.Fragments.count in
  let external_edges = ref [] in
  let live = ref nkeys in
  while !live > 1 do
    let nbr_tables =
      Telemetry.span ~ledger "phase2/frag-exchange" (fun () ->
          fst (Exchange.ints g cur))
    in
    let local v =
      let best = ref None in
      List.iter
        (fun (edge, nbr_frag) ->
          if nbr_frag <> cur.(v) then begin
            let cand = (Graph.weight g edge, edge, nbr_frag) in
            match !best with
            | Some b when not (better cand b) -> ()
            | _ -> best := Some cand
          end)
        nbr_tables.(v);
      match !best with Some c -> [ (cur.(v), c) ] | None -> []
    in
    let table =
      Telemetry.span ~ledger "phase2/mwoe-aggregate" (fun () ->
          fst (Keyed.global_best ~value_words:3 g ~tree:bfs ~nkeys ~local ~better))
    in
    (* Deterministic local merge step — identical at every vertex since
       the table was broadcast; computed once here. *)
    let uf = Union_find.create nkeys in
    let chosen = Hashtbl.create 16 in
    Array.iteri
      (fun f cand ->
        match cand with
        | Some (_, edge, gfrag) ->
          ignore (Union_find.union uf f gfrag);
          Hashtbl.replace chosen edge ()
        | None -> ())
      table;
    Hashtbl.iter (fun edge () -> external_edges := edge :: !external_edges) chosen;
    (* Representative = smallest fragment index in the merged class. *)
    let min_rep = Array.make nkeys max_int in
    for f = 0 to nkeys - 1 do
      let r = Union_find.find uf f in
      if f < min_rep.(r) then min_rep.(r) <- f
    done;
    for v = 0 to n - 1 do
      cur.(v) <- min_rep.(Union_find.find uf cur.(v))
    done;
    let seen = Hashtbl.create 16 in
    Array.iter (fun f -> Hashtbl.replace seen f ()) cur;
    let now = Hashtbl.length seen in
    if now = !live && now > 1 then
      failwith "Dist_mst: no progress in phase 2 (internal error)";
    live := now
  done;
  let internal_all = Array.to_list base.Fragments.internal_edges |> List.concat in
  let mst_edges = List.sort Int.compare (internal_all @ !external_edges) in
  Ledger.attach_perf ledger (Engine.totals_since engine_before);
  { graph = g; bfs; mst_edges; base; external_edges = !external_edges; ledger }

type rooted = {
  tree : Tree.t;
  parent_edge : int array;
  frag_root : int array;
  frag_parent : int array;
  frag_parent_edge : int array;
}

let root_at t ~rt =
  let g = t.graph in
  let base = t.base in
  let count = base.Fragments.count in
  (* T' is global knowledge (phase-2 tables were broadcast): build the
     fragment tree and root it at the fragment containing rt. *)
  let frag_adj = Array.make count [] in
  List.iter
    (fun id ->
      let u, v = Graph.endpoints g id in
      let fu = base.Fragments.frag_of.(u) and fv = base.Fragments.frag_of.(v) in
      frag_adj.(fu) <- (id, fv, u) :: frag_adj.(fu);
      frag_adj.(fv) <- (id, fu, v) :: frag_adj.(fv))
    t.external_edges;
  let top = base.Fragments.frag_of.(rt) in
  let frag_parent = Array.make count (-1) in
  let frag_parent_edge = Array.make count (-1) in
  let frag_root = Array.make count (-1) in
  frag_root.(top) <- rt;
  let visited = Array.make count false in
  visited.(top) <- true;
  let q = Queue.create () in
  Queue.push top q;
  while not (Queue.is_empty q) do
    let f = Queue.pop q in
    List.iter
      (fun (id, f', endpoint_in_f) ->
        ignore endpoint_in_f;
        if not visited.(f') then begin
          visited.(f') <- true;
          frag_parent.(f') <- f;
          frag_parent_edge.(f') <- id;
          (* The child fragment's root is the endpoint of the external
             edge inside the child fragment. *)
          let u, v = Graph.endpoints g id in
          frag_root.(f') <-
            (if base.Fragments.frag_of.(u) = f' then u else v);
          Queue.push f' q
        end)
      frag_adj.(f)
  done;
  (* Native parallel flood inside every fragment from its root. *)
  let is_root v = frag_root.(base.Fragments.frag_of.(v)) = v in
  let parent_edge_internal =
    Telemetry.span ~ledger:t.ledger "root-orient" (fun () ->
        fst (Forest.orient g ~tree_edges:base.Fragments.tree_edges ~is_root))
  in
  let parent_edge =
    Array.mapi
      (fun v pe ->
        if v = rt then -1
        else if pe >= 0 then pe
        else
          (* Fragment roots: parent edge is the external edge e_F. *)
          frag_parent_edge.(base.Fragments.frag_of.(v)))
      parent_edge_internal
  in
  let tree = Tree.of_edges g ~root:rt t.mst_edges in
  { tree; parent_edge; frag_root; frag_parent; frag_parent_edge }
