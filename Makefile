.PHONY: all build test bench bench-smoke clean

all: build

build:
	dune build

# Tier-1 gate: unit/property tests plus the engine differential smoke bench.
test:
	dune runtest

# Full benchmark-regression run: differential checker, workload suite at
# n in {1k, 4k, 16k}, and the before/after headline. Writes BENCH_congest.json.
bench:
	dune exec bench/engine_bench.exe

# Quick differential + throughput sanity check (n = 256, well under 30s).
# Also runs as part of `dune runtest` via the @bench-smoke alias.
bench-smoke:
	dune build @bench-smoke

clean:
	dune clean
