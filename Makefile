.PHONY: all build test bench bench-diff bench-smoke chaos chaos-smoke trace-smoke par-smoke route-smoke metrics-smoke scenarios oracle scale scale-smoke store-smoke store-bench clean

all: build

build:
	dune build

# Tier-1 gate: unit/property tests plus the engine differential smoke bench.
test:
	dune runtest

# Full benchmark-regression run: differential checker, workload suite at
# n in {1k, 4k, 16k}, and the before/after headline. Writes BENCH_congest.json.
bench:
	dune exec bench/engine_bench.exe

# Headline regression gate: rerun the full congest bench (writes a
# fresh BENCH_congest.json) and require headline.after.rounds_per_sec
# to clear the committed floor. Self-skips when the host's core count
# differs from the floor's 1-core calibration host (wall-clock
# throughput is not comparable across hosts).
bench-diff: bench
	dune exec bench/bench_diff.exe -- BENCH_congest.json

# Quick differential + throughput sanity check (n = 256, well under 30s).
# Also runs as part of `dune runtest` via the @bench-smoke alias.
bench-smoke:
	dune build @bench-smoke

# Fault-injection matrix: both engine backends under three seeded chaos
# plans across every algorithm family, plus the raw-vs-reliable BFS
# degradation sweep. Writes BENCH_faults.json.
chaos:
	dune exec bench/engine_bench.exe -- --chaos

# Small chaos matrix; also runs in `dune runtest` via @chaos-smoke.
chaos-smoke:
	dune build @chaos-smoke

# Telemetry round-trip: record a small spanner trace as Chrome JSON and
# JSONL, parse both back with `lightnet report`, and require >= 95% leaf
# span round coverage. Also runs in `dune runtest` via @trace-smoke.
trace-smoke:
	dune build @trace-smoke

# Parallel-backend smoke: spanner pipeline + chaotic reliable BFS and
# broadcast on 2/4 engine domains, with trace coverage and verdicts
# checked. Also runs in `dune runtest` via @par-smoke.
par-smoke:
	dune build @par-smoke

# Serving-layer smoke: build an artifact on a small doubling graph,
# serve 1k Zipf queries through the source cache, certify stretch <= t
# against exact distances, then hit the label tier. Also runs in
# `dune runtest` via @route-smoke.
route-smoke:
	dune build @route-smoke

# Metrics-registry smoke: spanner + serve with --metrics through both
# exporters (the Prometheus output re-validated by `lightnet metrics`),
# plus two same-seed scenario runs whose JSON snapshots must be
# byte-identical. Also runs in `dune runtest` via @metrics-smoke.
metrics-smoke:
	dune build @metrics-smoke

# Full declarative chaos suite: every committed .scn scenario through
# the harness (expected-violation must exit 5 or the suite fails),
# writing per-scenario verdicts, rounds, drops, retransmissions and SLO
# margins. Three cheap scenarios also run in `dune runtest` via
# @scenario-smoke.
scenarios:
	dune exec bin/lightnet_cli.exe -- scenario --dir scenarios \
	  --expect-violation expected-violation --json BENCH_scenarios.json

# Route-oracle benchmark: qps per tier, cache hit-rate sweep, label vs
# Dijkstra speedup, a certified max stretch, the store-fleet throughput
# matrix (qps vs domain count + store LRU hit-rate sweep) and the SLT
# epsilon/stretch table. Writes BENCH_oracle.json.
oracle:
	dune exec bench/oracle_bench.exe

# Digest-keyed store + fleet smoke: build/add/verify three networks,
# fleet-serve the same batch at 1/2/4 domains with byte-identical
# checksum files enforced by cmp, validate the exported metrics, and
# run a generated store-form scenario with a min-hit-rate SLO. Also
# runs in `dune runtest` via @store-smoke.
store-smoke:
	dune build @store-smoke

# Fleet-focused run of the oracle bench: the store_fleet section at
# full size (throughput vs domain count, store LRU hit-rate sweep over
# Zipf-skewed multi-network workloads) with every other section shrunk
# to smoke size. Rewrites BENCH_oracle.json, so commit numbers from
# `make oracle`, not from this target.
store-bench:
	dune exec bench/oracle_bench.exe -- --store-fleet

# Graph500-scale substrate gate at RMAT scale 17 (n = 131072, ~1.9M
# edges): streaming construction, BFS/TEPS, MST forest and artifact
# round-trip under wall-clock + Gc heap ceilings (measured ~9.5s /
# ~60 Mw; ceilings 60s / 3x heap). A smaller scale-14 version runs in
# `dune runtest` via @scale-smoke.
scale:
	dune exec bench/scale_smoke.exe -- --scale 17 --max-seconds 60

scale-smoke:
	dune build @scale-smoke

clean:
	dune clean
